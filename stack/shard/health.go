// Replica health: up/down state per replica, fed by background
// /healthz probing and by transport failures observed during sweeps.
// The dispatcher deals new work around down replicas and retries their
// unemitted tails on survivors; probes flip a recovered replica back
// up so it rejoins the fleet without a restart.
package shard

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/stack"
)

// HealthProber is implemented by replicas that expose a liveness
// probe; client.Client's Healthz (GET /healthz) is the canonical one.
// Replicas that do not implement it — an in-process *stack.Analyzer —
// are considered always healthy.
type HealthProber interface {
	Healthz(ctx context.Context) error
}

// replicaState is one replica plus its dispatcher-side bookkeeping.
type replicaState struct {
	chk  stack.Checker
	name string
	// pending counts sources assigned to this replica's stream and not
	// yet delivered — the load signal behind least-pending assignment.
	pending atomic.Int64

	mu          sync.Mutex
	down        bool
	lastErr     error
	transitions int64
}

func (rs *replicaState) isDown() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.down
}

// setDown records a failure; the first failure after an up period
// counts one transition.
func (rs *replicaState) setDown(err error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.down {
		rs.down = true
		rs.transitions++
	}
	rs.lastErr = err
}

// setUp records a successful probe; recovery after a down period
// counts one transition.
func (rs *replicaState) setUp() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.down {
		rs.down = false
		rs.transitions++
	}
	rs.lastErr = nil
}

// ReplicaHealth is one replica's state snapshot, for operators and
// tests. The JSON form is the `stack -fleet-status` wire format.
type ReplicaHealth struct {
	// Name is the replica's base URL (clients) or a positional name.
	Name string `json:"name"`
	Up   bool   `json:"up"`
	// Pending counts assigned-but-undelivered sources.
	Pending int64 `json:"pending"`
	// Transitions counts up↔down flips since construction.
	Transitions int64 `json:"transitions"`
	// LastErr is the failure that marked the replica down ("" when up).
	LastErr string `json:"lastErr,omitempty"`
}

// Health returns a snapshot of every replica's health state.
func (d *Dispatcher) Health() []ReplicaHealth {
	out := make([]ReplicaHealth, len(d.replicas))
	for i, rs := range d.replicas {
		rs.mu.Lock()
		out[i] = ReplicaHealth{
			Name:        rs.name,
			Up:          !rs.down,
			Pending:     rs.pending.Load(),
			Transitions: rs.transitions,
		}
		if rs.lastErr != nil {
			out[i].LastErr = rs.lastErr.Error()
		}
		rs.mu.Unlock()
	}
	return out
}

// DispatcherHealth is the JSON document HealthHandler serves: the
// fleet roll-up plus the per-replica snapshot of Health().
type DispatcherHealth struct {
	Up       int             `json:"up"`
	Total    int             `json:"total"`
	Replicas []ReplicaHealth `json:"replicas"`
}

// HealthHandler returns an http.Handler that serves the dispatcher's
// replica-health snapshot as JSON — the dispatcher-side counterpart of
// a replica's /healthz, for load balancers and fleet dashboards that
// sit in front of the sharding client rather than behind it. The
// response is 200 while at least one replica is up and 503 when the
// whole fleet is down (the body is served either way, so a dashboard
// can still show which replica failed and why).
func (d *Dispatcher) HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		doc := DispatcherHealth{Replicas: d.Health(), Total: len(d.replicas)}
		for _, rh := range doc.Replicas {
			if rh.Up {
				doc.Up++
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if doc.Up == 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		if r.Method == http.MethodHead {
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
}

// upIndices returns the indices of replicas not marked down.
func (d *Dispatcher) upIndices() []int {
	var ups []int
	for i, rs := range d.replicas {
		if !rs.isDown() {
			ups = append(ups, i)
		}
	}
	return ups
}

// probe runs one health check of replica i, flipping its up/down
// state. Replicas without a prober are left as they are (they never
// transport-fail, so they are never down).
func (d *Dispatcher) probe(ctx context.Context, i int) {
	p, ok := d.replicas[i].chk.(HealthProber)
	if !ok {
		return
	}
	pctx, cancel := context.WithTimeout(ctx, d.probeTimeout)
	defer cancel()
	if err := p.Healthz(pctx); err != nil {
		d.replicas[i].setDown(err)
	} else {
		d.replicas[i].setUp()
	}
}

// ProbeAll synchronously probes every replica once and returns the
// resulting health snapshot — the one-shot fleet check behind
// `stack -fleet-status`. Unlike StartHealth it does not start a
// background loop; unlike Health alone it reflects the fleet as of
// now, not as of the last probe or transport failure.
func (d *Dispatcher) ProbeAll(ctx context.Context) []ReplicaHealth {
	for i := range d.replicas {
		d.probe(ctx, i)
	}
	return d.Health()
}

// reviveDown synchronously probes only the replicas currently marked
// down — the cheap sweep-start revalidation that lets a recovered
// fleet take work again without waiting for the background prober.
func (d *Dispatcher) reviveDown(ctx context.Context) {
	for i, rs := range d.replicas {
		if rs.isDown() {
			d.probe(ctx, i)
		}
	}
}

// StartHealth begins background health probing: every interval (5s
// when <= 0) each probeable replica's /healthz is checked and its
// up/down state updated — the mechanism that takes a dead stackd out
// of new assignments and folds a recovered one back in. The returned
// stop function (idempotent) ends probing; callers own the lifecycle:
//
//	stop := d.StartHealth(5 * time.Second)
//	defer stop()
func (d *Dispatcher) StartHealth(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			for i := range d.replicas {
				select {
				case <-done:
					return
				default:
				}
				d.probe(context.Background(), i)
			}
			select {
			case <-ticker.C:
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
