// Tests for the operator-facing fleet health surface: the one-shot
// ProbeAll snapshot behind `stack -fleet-status` and its JSON wire
// format.
package shard

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/stack"
	"repro/stack/client"
	"repro/stack/service"
)

// TestProbeAllSnapshotAndJSON: ProbeAll reflects the fleet as of now —
// a live replica reports up, a dead one reports down with the probe
// failure — and the snapshot marshals to the documented lowercase JSON
// keys, omitting lastErr for healthy replicas.
func TestProbeAllSnapshotAndJSON(t *testing.T) {
	live := newReplicaServer(t)
	dead := httptest.NewServer(service.New(stack.New(stack.WithSolverTimeout(0)), service.Options{}))
	deadURL := dead.URL
	dead.Close() // connection refused from the first probe on

	d := New(live, client.New(deadURL))
	h := d.ProbeAll(context.Background())
	if len(h) != 2 {
		t.Fatalf("ProbeAll returned %d replicas, want 2", len(h))
	}
	if !h[0].Up || h[0].LastErr != "" {
		t.Errorf("live replica = %+v, want up with no error", h[0])
	}
	if h[1].Up || h[1].LastErr == "" || h[1].Transitions == 0 {
		t.Errorf("dead replica = %+v, want down with the probe failure and a transition", h[1])
	}

	out, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		t.Fatalf("marshaling health: %v", err)
	}
	s := string(out)
	for _, key := range []string{`"name"`, `"up": true`, `"up": false`, `"pending"`, `"transitions"`, `"lastErr"`} {
		if !strings.Contains(s, key) {
			t.Errorf("fleet-status JSON missing %s:\n%s", key, s)
		}
	}
	// lastErr is omitempty: exactly one replica (the dead one) has it.
	if n := strings.Count(s, `"lastErr"`); n != 1 {
		t.Errorf("lastErr appears %d times, want 1 (omitted for the healthy replica):\n%s", n, s)
	}

	// A replica that recovers between one-shot probes flips back up on
	// the next ProbeAll, counting both transitions.
	var failing atomic.Bool
	failing.Store(true)
	real := service.New(stack.New(stack.WithSolverTimeout(0)), service.Options{})
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			http.Error(w, "rebooting", http.StatusServiceUnavailable)
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer flaky.Close()
	d2 := New(client.New(flaky.URL))
	if h := d2.ProbeAll(context.Background()); h[0].Up {
		t.Fatalf("failing replica = %+v, want down", h[0])
	}
	failing.Store(false)
	if h := d2.ProbeAll(context.Background()); !h[0].Up || h[0].Transitions != 2 {
		t.Errorf("recovered replica = %+v, want up with 2 transitions", h[0])
	}
}
