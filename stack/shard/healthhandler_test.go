package shard

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/stack"
)

func healthDoc(t *testing.T, d *Dispatcher, wantCode int) DispatcherHealth {
	t.Helper()
	rec := httptest.NewRecorder()
	d.HealthHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != wantCode {
		t.Fatalf("status = %d, want %d (body %q)", rec.Code, wantCode, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var doc DispatcherHealth
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON body %q: %v", rec.Body.String(), err)
	}
	return doc
}

func TestHealthHandler(t *testing.T) {
	d := New(stack.New(), stack.New())
	doc := healthDoc(t, d, http.StatusOK)
	if doc.Up != 2 || doc.Total != 2 || len(doc.Replicas) != 2 {
		t.Fatalf("fleet roll-up = %+v, want 2/2 with 2 replicas", doc)
	}
	if doc.Replicas[0].Name != "replica0" || !doc.Replicas[0].Up {
		t.Fatalf("replica 0 = %+v, want up replica0", doc.Replicas[0])
	}

	// One replica down: still 200, and the failure is in the body.
	d.replicas[1].setDown(errors.New("connection refused"))
	doc = healthDoc(t, d, http.StatusOK)
	if doc.Up != 1 {
		t.Fatalf("up = %d after one failure, want 1", doc.Up)
	}
	if doc.Replicas[1].Up || doc.Replicas[1].LastErr != "connection refused" {
		t.Fatalf("replica 1 = %+v, want down with the recorded error", doc.Replicas[1])
	}

	// Whole fleet down: 503, body still served.
	d.replicas[0].setDown(errors.New("timeout"))
	doc = healthDoc(t, d, http.StatusServiceUnavailable)
	if doc.Up != 0 || len(doc.Replicas) != 2 {
		t.Fatalf("fleet-down doc = %+v, want 0 up with both replicas listed", doc)
	}

	// Non-read methods are rejected.
	rec := httptest.NewRecorder()
	d.HealthHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/healthz", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want %d", rec.Code, http.StatusMethodNotAllowed)
	}
}
