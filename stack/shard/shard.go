// Package shard fans analysis across N replicas behind one
// stack.Checker: the scaling shape of the paper's §6.4 whole-archive
// run, where 8,575 packages saturated a single 16-core machine —
// here each replica is any Checker (a stack/client against a remote
// stackd, or an in-process *stack.Analyzer), so a fleet of stackd
// replicas checks one batch cooperatively.
//
// The Dispatcher is fleet-grade, not a static dealer: replicas carry
// up/down health state fed by background /healthz probing (StartHealth)
// and by observed transport failures; sources are dealt in input order
// to the least-pending healthy replica; and when a replica dies
// mid-sweep, the unemitted tail of its subset is retried on surviving
// replicas — re-sequenced through the same in-order emitter
// (internal/emit) — so the caller still observes exactly the local
// contract: strictly increasing input indices, O(replicas) results
// buffered, first error in input order wins, and output byte-identical
// to a local single-process run on the same inputs and options, even
// across a replica death. Saturated replicas (HTTP 503) are retried
// with exponential backoff that honors the server's Retry-After hint.
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"strings"
	"sync"
	"time"

	inorder "repro/internal/emit"
	"repro/stack"
	"repro/stack/client"
)

// Dispatcher implements stack.Checker over a set of replicas.
type Dispatcher struct {
	replicas []*replicaState
	// windowPerReplica bounds the emitter's buffering (see
	// CheckSources); fixed at construction.
	windowPerReplica int
	// retryAttempts caps how many times one stream's unemitted tail is
	// retried (across replicas) before the sweep fails.
	retryAttempts int
	// backoffBase/backoffMax shape the exponential retry backoff; a
	// 503's Retry-After hint overrides the computed delay when larger.
	backoffBase time.Duration
	backoffMax  time.Duration
	// probeTimeout bounds one /healthz probe.
	probeTimeout time.Duration
	// clientOpts are applied to every client FromHosts constructs.
	clientOpts []client.Option
}

var _ stack.Checker = (*Dispatcher)(nil)

// Option configures a Dispatcher (see Configure and FromHosts).
type Option func(*Dispatcher)

// WithRetryAttempts caps per-stream retries of a failed replica's
// unemitted tail; 0 disables retry entirely.
func WithRetryAttempts(n int) Option {
	return func(d *Dispatcher) {
		if n >= 0 {
			d.retryAttempts = n
		}
	}
}

// WithBackoff shapes the exponential retry backoff: no delay before
// the first retry, then base, 2*base, ... capped at max. A replica's
// Retry-After hint overrides the computed delay when larger.
func WithBackoff(base, max time.Duration) Option {
	return func(d *Dispatcher) {
		if base > 0 {
			d.backoffBase = base
		}
		if max > 0 {
			d.backoffMax = max
		}
	}
}

// WithClientOptions passes client options (auth tokens, custom HTTP
// clients) to every replica client FromHosts constructs.
func WithClientOptions(opts ...client.Option) Option {
	return func(d *Dispatcher) { d.clientOpts = append(d.clientOpts, opts...) }
}

// Configure applies options and returns d for chaining. Not safe to
// call concurrently with an in-flight CheckSources.
func (d *Dispatcher) Configure(opts ...Option) *Dispatcher {
	for _, o := range opts {
		o(d)
	}
	return d
}

// New returns a Dispatcher over the given replicas. It panics on an
// empty replica set: there is nowhere to send work, and the zero-value
// misuse should fail at construction, not on the first request.
func New(replicas ...stack.Checker) *Dispatcher {
	if len(replicas) == 0 {
		panic("shard: New needs at least one replica")
	}
	d := &Dispatcher{
		windowPerReplica: 4,
		retryAttempts:    4,
		backoffBase:      100 * time.Millisecond,
		backoffMax:       5 * time.Second,
		probeTimeout:     2 * time.Second,
	}
	for i, chk := range replicas {
		name := fmt.Sprintf("replica%d", i)
		if c, ok := chk.(*client.Client); ok {
			name = c.Base()
		}
		d.replicas = append(d.replicas, &replicaState{chk: chk, name: name})
	}
	return d
}

// FromHosts returns a Dispatcher of stack/client replicas for a
// comma-separated address list — the translation behind every CLI's
// -remote flag, kept in one place. Empty elements are skipped; an
// effectively empty list is an error, and so is the same replica named
// twice (after URL normalization): a duplicate would double-deal two
// subsets to one replica while the operator believes the load is
// spread.
func FromHosts(list string, opts ...Option) (*Dispatcher, error) {
	var cfg Dispatcher
	cfg.Configure(opts...) // read clientOpts before constructing clients
	seen := make(map[string]string)
	var replicas []stack.Checker
	for _, h := range strings.Split(list, ",") {
		if h = strings.TrimSpace(h); h == "" {
			continue
		}
		c := client.New(h, cfg.clientOpts...)
		if prev, dup := seen[c.Base()]; dup {
			return nil, fmt.Errorf("replica list %q names %s twice (%q and %q)", list, c.Base(), prev, h)
		}
		seen[c.Base()] = h
		replicas = append(replicas, c)
	}
	if len(replicas) == 0 {
		return nil, fmt.Errorf("replica list %q names no addresses", list)
	}
	return New(replicas...).Configure(opts...), nil
}

// retryable reports whether err is worth retrying on another replica
// (or on the same one after backoff): failures of the transport itself
// and saturation answers, where the input was never judged. A
// replica's verdict about the input — a parse rejection, a mid-stream
// analysis error naming the source — is final, as is the caller's own
// cancellation.
func retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if isTransport(err) {
		return true
	}
	var se *client.StatusError
	if errors.As(err, &se) {
		return se.StatusCode == http.StatusServiceUnavailable || se.StatusCode == http.StatusBadGateway
	}
	return false
}

// isTransport reports whether err is a transport-layer failure — the
// kind that marks a replica down until a probe revives it.
func isTransport(err error) bool {
	var te *client.TransportError
	return errors.As(err, &te)
}

// retryDelay computes the wait before retry number attempt (0-based):
// the first retry is immediate, then exponential from backoffBase
// capped at backoffMax — unless the failure carried a larger
// Retry-After hint, which is always honored.
func (d *Dispatcher) retryDelay(attempt int, err error) time.Duration {
	var delay time.Duration
	if attempt > 0 {
		delay = d.backoffBase << (attempt - 1)
		if delay > d.backoffMax || delay <= 0 {
			delay = d.backoffMax
		}
	}
	var se *client.StatusError
	if errors.As(err, &se) && se.RetryAfter > delay {
		delay = se.RetryAfter
	}
	return delay
}

// CheckSource routes one source to an up replica chosen by name hash,
// so repeated analyses of the same file land on the same replica (warm
// caches) while distinct names spread across the fleet. Transport
// failures mark the replica down and fail over to the next one.
func (d *Dispatcher) CheckSource(ctx context.Context, name, src string) (*stack.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ups := d.upIndices()
	if len(ups) == 0 {
		ups = d.allIndices()
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	start := int(h.Sum32() % uint32(len(ups)))
	var lastErr error
	for attempt := 0; attempt <= d.retryAttempts; attempt++ {
		r := ups[(start+attempt)%len(ups)]
		res, err := d.replicas[r].chk.CheckSource(ctx, name, src)
		if err == nil {
			return res, nil
		}
		if !retryable(err) {
			return nil, err
		}
		if isTransport(err) {
			d.replicas[r].setDown(err)
		}
		lastErr = err
		if delay := d.retryDelay(attempt, err); delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
		}
	}
	return nil, lastErr
}

// replicaOutcome is one stream's final state: its summed stats, the
// error it gave up with (nil for a clean finish), and the global input
// index at which its emission broke (len(srcs) when complete) — the
// earliest one across streams is the batch's first error.
type replicaOutcome struct {
	stats   stack.Stats
	err     error
	failIdx int
}

// CheckSources deals the batch across the up replicas — each source,
// in input order, to the replica with the least pending work (with an
// idle fleet this is exactly round-robin) — runs every replica's own
// streaming CheckSources concurrently, and re-sequences the replies
// into global input order through the shared emitter. emit observes
// strictly increasing input indices as soon as each source and every
// earlier one has finished — across the whole fleet.
//
// When a replica's stream breaks mid-sweep (the process died, the
// connection reset, the POST was refused), the unemitted tail of its
// subset is retried on a surviving replica, with backoff honoring any
// Retry-After hint, until it completes or the retry budget is spent —
// so one dead replica degrades throughput instead of failing the
// sweep, and the output stays byte-identical to a local run. A
// replica's own verdict about an input (a parse rejection naming the
// source) is never retried: emission stops at the earliest failed
// input index and that error — already naming replica and source — is
// returned. The returned Stats sum the replicas' stats for the
// sources that were analyzed.
func (d *Dispatcher) CheckSources(ctx context.Context, srcs []stack.Source, emit func(stack.FileResult)) (stack.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(srcs) == 0 {
		return stack.Stats{}, nil
	}
	// Give replicas marked down a synchronous chance to have recovered
	// before this batch deals around them.
	d.reviveDown(ctx)

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// stop unblocks streams waiting for admission slots once another
	// stream has given up — the slot they wait for may belong to a
	// result that will now never arrive.
	stop := make(chan struct{})
	var stopOnce sync.Once
	fail := func() {
		stopOnce.Do(func() {
			close(stop)
			cancel()
		})
	}

	// Least-pending assignment: deal each source, in input order, to
	// the up replica with the least assigned-but-undelivered work
	// (ties to the lowest replica index, so an idle fleet deals exact
	// round-robin). Down replicas get nothing; if the whole fleet is
	// marked down, attempting every replica beats refusing outright.
	avail := d.upIndices()
	if len(avail) == 0 {
		avail = d.allIndices()
	}
	load := make([]int64, len(d.replicas))
	for _, r := range avail {
		load[r] = d.replicas[r].pending.Load()
	}
	owner := make([]int, len(srcs))
	assigned := make([][]int, len(d.replicas))
	for i := range srcs {
		best := avail[0]
		for _, r := range avail[1:] {
			if load[r] < load[best] {
				best = r
			}
		}
		owner[i] = best
		load[best]++
		assigned[best] = append(assigned[best], i)
	}
	active := 0
	for r, g := range assigned {
		if len(g) > 0 {
			active++
			d.replicas[r].pending.Add(int64(len(g)))
		}
	}

	// Admission must be budgeted PER STREAM, not just globally: the
	// feeder-style users of emit.Ordered admit in global index order,
	// so the earliest undelivered index always holds a slot — but
	// streams admit in their own completion order, and a fast stream
	// could otherwise consume the entire shared window on indices
	// after a gap while the slow stream owning the gap starves in
	// Admit forever (delivery can't advance past the gap, so no slot
	// would ever free). With a per-stream quota the gap's owner holds
	// zero slots exactly when it needs one — everything it emitted
	// earlier has already been delivered — so it always proceeds and
	// delivery always advances. The quota frees on delivery, before
	// the emitter's own window slot, so the shared Admit below blocks
	// at most transiently. Retried tails keep charging the original
	// owner's quota and are executed by one survivor at a time in
	// increasing index order, which preserves the invariant the
	// argument rests on: each stream's emissions are increasing in
	// global index.
	quota := make([]chan struct{}, len(d.replicas))
	for r := range quota {
		quota[r] = make(chan struct{}, d.windowPerReplica)
	}
	delivered := make([]int, len(d.replicas))
	ord := inorder.NewOrdered(d.windowPerReplica*active, func(idx int, fr stack.FileResult) {
		if emit != nil {
			emit(fr)
		}
		r := owner[idx]
		delivered[r]++
		d.replicas[r].pending.Add(-1)
		<-quota[r]
	})

	outcomes := make([]replicaOutcome, len(d.replicas))
	var wg sync.WaitGroup
	for r := range d.replicas {
		if len(assigned[r]) == 0 {
			outcomes[r] = replicaOutcome{failIdx: len(srcs)}
			continue
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			outcomes[r] = d.runStream(ctx, r, assigned[r], srcs, quota[r], ord, stop, fail)
		}(r)
	}
	wg.Wait()
	ord.Close()
	// Failed tails were never delivered; release their pending charge
	// so future assignment is not skewed by a finished sweep.
	for r := range d.replicas {
		if leak := len(assigned[r]) - delivered[r]; leak > 0 {
			d.replicas[r].pending.Add(-int64(leak))
		}
	}

	var st stack.Stats
	for _, o := range outcomes {
		st.Add(o.stats)
	}
	// First error in input order wins — but a stream cancelled BY the
	// dispatcher (we tore the shared context down after another
	// stream's failure) is a casualty, not a cause, and must not
	// shadow the root error. When the caller's own context was
	// cancelled, cancellations are genuine and any of them serves.
	secondary := func(err error) bool {
		return errors.Is(err, context.Canceled) && parent.Err() == nil
	}
	var firstErr error
	firstIdx := len(srcs) + 1
	for _, o := range outcomes {
		if o.err == nil || secondary(o.err) {
			continue
		}
		if o.failIdx < firstIdx {
			firstErr, firstIdx = o.err, o.failIdx
		}
	}
	if firstErr == nil {
		for _, o := range outcomes {
			if o.err != nil {
				firstErr = o.err
				break
			}
		}
	}
	return st, firstErr
}

// runStream drives the subset owned by replica r to completion: it
// streams the remaining sources through the current executing replica
// (initially r itself), and on a retryable failure marks the executor
// down (transport faults only), picks the least-pending surviving
// replica, backs off, and retries the unemitted tail — charging
// admission to r's quota throughout, so the deadlock-freedom argument
// in CheckSources keeps holding.
func (d *Dispatcher) runStream(ctx context.Context, r int, globals []int, srcs []stack.Source, quota chan struct{}, ord *inorder.Ordered[stack.FileResult], stop chan struct{}, fail func()) replicaOutcome {
	exec := r
	rem := globals
	var total stack.Stats
	for attempt := 0; ; attempt++ {
		subset := make([]stack.Source, len(rem))
		for j, g := range rem {
			subset[j] = srcs[g]
		}
		// tail is this attempt's view of rem; emitted counts results
		// actually handed to the emitter, so rem[emitted:] is exactly
		// the unemitted tail whatever the failure mode.
		tail := rem
		emitted := 0
		stx, err := d.replicas[exec].chk.CheckSources(ctx, subset, func(fr stack.FileResult) {
			select {
			case quota <- struct{}{}:
			case <-stop:
				return // another stream failed; drop the tail
			}
			if !ord.Admit(stop) {
				<-quota
				return
			}
			g := tail[fr.Index]
			fr.Index = g
			ord.Put(g, fr)
			emitted++
		})
		total.Add(stx)
		rem = rem[emitted:]
		if err == nil {
			return replicaOutcome{stats: total, failIdx: len(srcs)}
		}
		if len(rem) == 0 {
			// The stream broke after its last result (between the final
			// line and the stats trailer, say): the output is complete,
			// so the batch must not fail — but the replica is still
			// sick.
			if isTransport(err) {
				d.replicas[exec].setDown(err)
			}
			return replicaOutcome{stats: total, failIdx: len(srcs)}
		}
		if ctx.Err() != nil || !retryable(err) || attempt >= d.retryAttempts {
			fail()
			return replicaOutcome{stats: total, err: err, failIdx: rem[0]}
		}
		if isTransport(err) {
			d.replicas[exec].setDown(err)
		}
		exec = d.pickRetry(exec)
		if delay := d.retryDelay(attempt, err); delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-stop:
				t.Stop()
				return replicaOutcome{stats: total, err: err, failIdx: rem[0]}
			case <-ctx.Done():
				t.Stop()
				fail()
				return replicaOutcome{stats: total, err: err, failIdx: rem[0]}
			}
		}
	}
}

// pickRetry chooses where a failed tail goes next: the least-pending
// up replica, falling back to the current executor when the whole
// fleet is marked down (a later probe may revive someone; meanwhile
// hammering one address is no worse than any other choice).
func (d *Dispatcher) pickRetry(exec int) int {
	best := -1
	for i, rs := range d.replicas {
		if rs.isDown() {
			continue
		}
		if best == -1 || rs.pending.Load() < d.replicas[best].pending.Load() {
			best = i
		}
	}
	if best == -1 {
		return exec
	}
	return best
}

func (d *Dispatcher) allIndices() []int {
	all := make([]int, len(d.replicas))
	for i := range all {
		all[i] = i
	}
	return all
}
