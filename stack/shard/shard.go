// Package shard fans analysis across N replicas behind one
// stack.Checker: the scaling shape of the paper's §6.4 whole-archive
// run, where 8,575 packages saturated a single 16-core machine —
// here each replica is any Checker (a stack/client against a remote
// stackd, or an in-process *stack.Analyzer), so a fleet of stackd
// replicas checks one batch cooperatively.
//
// Sources are dealt round-robin by input index, each replica streams
// its own subset in subset order, and the dispatcher re-sequences the
// interleaved streams through the shared in-order emitter
// (internal/emit) — the same machinery underneath corpus.Sweeper and
// stack.CheckSources — so the caller observes exactly the local
// contract: strictly increasing input indices, O(replicas) results
// buffered, first error in input order wins. A sharded run is
// byte-identical to a local single-process run on the same inputs
// and options.
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	inorder "repro/internal/emit"
	"repro/stack"
	"repro/stack/client"
)

// Dispatcher implements stack.Checker over a set of replicas.
type Dispatcher struct {
	replicas []stack.Checker
	// windowPerReplica bounds the emitter's buffering (see
	// CheckSources); fixed at construction.
	windowPerReplica int
}

var _ stack.Checker = (*Dispatcher)(nil)

// New returns a Dispatcher over the given replicas. It panics on an
// empty replica set: there is nowhere to send work, and the zero-value
// misuse should fail at construction, not on the first request.
func New(replicas ...stack.Checker) *Dispatcher {
	if len(replicas) == 0 {
		panic("shard: New needs at least one replica")
	}
	return &Dispatcher{replicas: replicas, windowPerReplica: 4}
}

// FromHosts returns a Dispatcher of stack/client replicas for a
// comma-separated address list — the translation behind every CLI's
// -remote flag, kept in one place. Empty elements are skipped; an
// effectively empty list is an error.
func FromHosts(list string) (*Dispatcher, error) {
	var replicas []stack.Checker
	for _, h := range strings.Split(list, ",") {
		if h = strings.TrimSpace(h); h != "" {
			replicas = append(replicas, client.New(h))
		}
	}
	if len(replicas) == 0 {
		return nil, fmt.Errorf("replica list %q names no addresses", list)
	}
	return New(replicas...), nil
}

// CheckSource routes one source to a replica chosen by name hash, so
// repeated analyses of the same file land on the same replica (warm
// caches), while distinct names spread across the fleet.
func (d *Dispatcher) CheckSource(ctx context.Context, name, src string) (*stack.Result, error) {
	h := fnv.New32a()
	h.Write([]byte(name))
	return d.replicas[h.Sum32()%uint32(len(d.replicas))].CheckSource(ctx, name, src)
}

// CheckSources deals the batch round-robin across the replicas
// (replica r gets input indices r, r+N, r+2N, ...), runs every
// replica's own streaming CheckSources concurrently, and re-sequences
// the replies into global input order through the shared emitter.
// emit observes strictly increasing input indices as soon as each
// source and every earlier one has finished — across the whole fleet.
//
// On failure the dispatcher cancels the other replicas, emission
// stops at the earliest failed input index, and that error (already
// carrying the source name) is returned. The returned Stats sum the
// replicas' stats for the sources that were analyzed.
func (d *Dispatcher) CheckSources(ctx context.Context, srcs []stack.Source, emit func(stack.FileResult)) (stack.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(srcs) == 0 {
		return stack.Stats{}, nil
	}
	n := len(d.replicas)
	if n > len(srcs) {
		n = len(srcs)
	}
	if n == 1 {
		return d.replicas[0].CheckSources(ctx, srcs, emit)
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// stop unblocks replicas waiting for admission slots once another
	// replica has failed — the slot they wait for may belong to a
	// result that will now never arrive.
	stop := make(chan struct{})
	var stopOnce sync.Once
	fail := func() {
		stopOnce.Do(func() {
			close(stop)
			cancel()
		})
	}

	// Admission must be budgeted PER REPLICA, not just globally: the
	// feeder-style users of emit.Ordered admit in global index order,
	// so the earliest undelivered index always holds a slot — but
	// replicas admit in their own completion order, and a fast replica
	// could otherwise consume the entire shared window on indices
	// after a gap while the slow replica owning the gap starves in
	// Admit forever (delivery can't advance past the gap, so no slot
	// would ever free). With a per-replica quota the gap's owner holds
	// zero slots exactly when it needs one — everything it emitted
	// earlier has already been delivered — so it always proceeds and
	// delivery always advances. The quota frees on delivery, before
	// the emitter's own window slot, so the shared Admit below blocks
	// at most transiently.
	quota := make([]chan struct{}, n)
	for r := range quota {
		quota[r] = make(chan struct{}, d.windowPerReplica)
	}
	ord := inorder.NewOrdered(d.windowPerReplica*n, func(idx int, fr stack.FileResult) {
		if emit != nil {
			emit(fr)
		}
		<-quota[idx%n] // round-robin dealing: index i belongs to replica i%n
	})

	type replicaOutcome struct {
		stats stack.Stats
		err   error
		// failIdx is the global input index at which this replica's
		// stream broke (len(srcs) when it finished cleanly); the
		// earliest one across replicas is the batch's first error.
		failIdx int
	}
	outcomes := make([]replicaOutcome, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		// Replica r's subset, with globals[j] the original index of its
		// j-th source. Each replica emits its subset in subset order,
		// so the j-th callback is exactly subset source j.
		var subset []stack.Source
		var globals []int
		for i := r; i < len(srcs); i += n {
			subset = append(subset, srcs[i])
			globals = append(globals, i)
		}
		wg.Add(1)
		go func(r int, subset []stack.Source, globals []int) {
			defer wg.Done()
			emitted := 0
			st, err := d.replicas[r].CheckSources(ctx, subset, func(fr stack.FileResult) {
				select {
				case quota[r] <- struct{}{}:
				case <-stop:
					return // another replica failed; drop the tail
				}
				if !ord.Admit(stop) {
					<-quota[r]
					return
				}
				g := globals[fr.Index]
				fr.Index = g
				ord.Put(g, fr)
				emitted++
			})
			o := replicaOutcome{stats: st, err: err, failIdx: len(srcs)}
			if err != nil {
				if emitted < len(globals) {
					o.failIdx = globals[emitted]
				}
				fail()
			}
			outcomes[r] = o
		}(r, subset, globals)
	}
	wg.Wait()
	ord.Close()

	var st stack.Stats
	for _, o := range outcomes {
		st.Add(o.stats)
	}
	// First error in input order wins — but a replica cancelled BY the
	// dispatcher (we tore the shared context down after another
	// replica's failure) is a casualty, not a cause, and must not
	// shadow the root error. When the caller's own context was
	// cancelled, cancellations are genuine and any of them serves.
	secondary := func(err error) bool {
		return errors.Is(err, context.Canceled) && parent.Err() == nil
	}
	var firstErr error
	firstIdx := len(srcs) + 1
	for _, o := range outcomes {
		if o.err == nil || secondary(o.err) {
			continue
		}
		if o.failIdx < firstIdx {
			firstErr, firstIdx = o.err, o.failIdx
		}
	}
	if firstErr == nil {
		for _, o := range outcomes {
			if o.err != nil {
				firstErr = o.err
				break
			}
		}
	}
	return st, firstErr
}
