package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/stack"
	"repro/stack/client"
	"repro/stack/service"
)

const fig1Src = `
int parse_header(char *buf, char *buf_end, unsigned int len) {
	if (buf + len >= buf_end)
		return -1;
	if (buf + len < buf)
		return -1;
	return 0;
}
`

const divSrc = `
int scale(int x, int y) {
	int q = x / y;
	if (y == 0)
		return -1;
	return q;
}
`

// batch mixes report-producing, clean, and repeated sources — enough
// files that round-robin dealing gives every replica real work.
func batch() []stack.Source {
	return []stack.Source{
		{Name: "a.c", Text: fig1Src},
		{Name: "b.c", Text: "int f(void) { return 0; }"},
		{Name: "c.c", Text: divSrc},
		{Name: "d.c", Text: fig1Src},
		{Name: "e.c", Text: divSrc},
		{Name: "f.c", Text: "int g(void) { return 1; }"},
		{Name: "g.c", Text: fig1Src},
	}
}

// jsonl renders a Checker's batch output through the JSONL sink — the
// canonical byte-level view of the stream.
func jsonl(t *testing.T, chk stack.Checker, srcs []stack.Source) (string, stack.Stats) {
	t.Helper()
	var buf bytes.Buffer
	sink := stack.NewJSONLSink(&buf)
	st, err := chk.CheckSources(context.Background(), srcs, func(fr stack.FileResult) {
		if err := sink.Emit(fr); err != nil {
			t.Fatal(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.String(), st
}

// TestShardedLocalByteIdentity: a dispatcher over in-process replicas
// produces the same stream as one local Analyzer — any replica count.
func TestShardedLocalByteIdentity(t *testing.T) {
	srcs := batch()
	local := stack.New(stack.WithSolverTimeout(0))
	want, wantSt := jsonl(t, local, srcs)
	if want == "" {
		t.Fatal("local run produced nothing; identity test is vacuous")
	}
	for _, replicas := range []int{1, 2, 3} {
		reps := make([]stack.Checker, replicas)
		for i := range reps {
			reps[i] = stack.New(stack.WithSolverTimeout(0))
		}
		got, gotSt := jsonl(t, New(reps...), srcs)
		if got != want {
			t.Errorf("%d replicas: stream diverged\n--- got ---\n%s--- want ---\n%s", replicas, got, want)
		}
		// Stats sum across replicas; total effort equals the local run
		// for a deterministic workload.
		if gotSt.Queries != wantSt.Queries || gotSt.Functions != wantSt.Functions {
			t.Errorf("%d replicas: stats diverged: %+v vs %+v", replicas, gotSt, wantSt)
		}
	}
}

// TestShardedRemoteByteIdentity is the acceptance criterion: a
// 2-replica sharded run over real HTTP replicas is byte-identical to
// the local single-process run on the same inputs.
func TestShardedRemoteByteIdentity(t *testing.T) {
	srcs := batch()
	local := stack.New(stack.WithSolverTimeout(0))
	want, wantSt := jsonl(t, local, srcs)

	reps := make([]stack.Checker, 2)
	for i := range reps {
		ts := httptest.NewServer(service.New(stack.New(stack.WithSolverTimeout(0)), service.Options{}))
		t.Cleanup(ts.Close)
		reps[i] = client.New(ts.URL)
	}
	got, gotSt := jsonl(t, New(reps...), srcs)
	if got != want {
		t.Errorf("sharded remote stream diverged from local\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// ArenaBytesReused tracks per-process allocator reuse and so depends
	// on how the work is spread across replicas; all analysis quantities
	// must still match exactly.
	gotSt.ArenaBytesReused, wantSt.ArenaBytesReused = 0, 0
	if gotSt != wantSt {
		t.Errorf("sharded remote stats diverged: %+v vs %+v", gotSt, wantSt)
	}
}

// TestShardedErrorInOrder: the earliest failing input index wins, the
// error names that source, and emission stops at its index — even when
// the failure lands on a different replica than later successes.
func TestShardedErrorInOrder(t *testing.T) {
	reps := []stack.Checker{
		stack.New(stack.WithSolverTimeout(0)),
		stack.New(stack.WithSolverTimeout(0)),
	}
	srcs := []stack.Source{
		{Name: "a.c", Text: fig1Src},         // replica 0
		{Name: "broken.c", Text: "int f( {"}, // replica 1 — fails
		{Name: "c.c", Text: divSrc},          // replica 0
		{Name: "d.c", Text: fig1Src},         // replica 1
	}
	var order []int
	_, err := New(reps...).CheckSources(context.Background(), srcs, func(fr stack.FileResult) {
		order = append(order, fr.Index)
	})
	if err == nil || !strings.Contains(err.Error(), "broken.c") {
		t.Fatalf("error = %v, want one naming broken.c", err)
	}
	if len(order) > 0 && !reflect.DeepEqual(order, []int{0}) {
		t.Errorf("emitted indices %v, want at most [0]", order)
	}
	for _, idx := range order {
		if idx >= 1 {
			t.Errorf("index %d emitted at or after the failing index", idx)
		}
	}
}

// TestShardedCancellation: cancelling the caller's context surfaces
// context.Canceled (not a replica casualty masking it) and returns
// promptly.
func TestShardedCancellation(t *testing.T) {
	reps := []stack.Checker{stack.New(), stack.New()}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New(reps...).CheckSources(ctx, batch(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCheckSourceRouting: single-file analysis routes by name hash —
// deterministic, and the result matches a local run.
func TestCheckSourceRouting(t *testing.T) {
	local := stack.New(stack.WithSolverTimeout(0))
	d := New(stack.New(stack.WithSolverTimeout(0)), stack.New(stack.WithSolverTimeout(0)))
	want, err := local.CheckSource(context.Background(), "fig1.c", fig1Src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.CheckSource(context.Background(), "fig1.c", fig1Src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("routed result diverged: %+v vs %+v", got, want)
	}
}

// stubChecker emits every source of its subset in order with empty
// diagnostics; gate (when non-nil) parks it before its first emission.
type stubChecker struct {
	gate <-chan struct{}
}

func (s *stubChecker) CheckSource(ctx context.Context, name, src string) (*stack.Result, error) {
	return &stack.Result{File: name}, nil
}

func (s *stubChecker) CheckSources(ctx context.Context, srcs []stack.Source, emit func(stack.FileResult)) (stack.Stats, error) {
	if s.gate != nil {
		select {
		case <-s.gate:
		case <-ctx.Done():
			return stack.Stats{}, ctx.Err()
		}
	}
	for i := range srcs {
		emit(stack.FileResult{Index: i, File: srcs[i].Name})
	}
	return stack.Stats{}, nil
}

// TestShardedSlowReplicaNoDeadlock: a fast replica running arbitrarily
// far ahead of a slow replica's earliest pending source must not
// starve the slow replica of admission slots. Regression test for the
// per-replica quota: with only the shared window, the fast replica
// consumed every slot on indices after the gap, delivery could never
// advance, and the sweep hung forever.
func TestShardedSlowReplicaNoDeadlock(t *testing.T) {
	gate := make(chan struct{})
	slow := &stubChecker{gate: gate}
	fast := &stubChecker{}
	// 40 sources round-robin over 2 replicas: the fast replica's 20
	// results dwarf the 4*2 shared window.
	srcs := make([]stack.Source, 40)
	for i := range srcs {
		srcs[i] = stack.Source{Name: fmt.Sprintf("s%02d.c", i), Text: "int x;"}
	}
	var order []int
	done := make(chan error, 1)
	go func() {
		_, err := New(slow, fast).CheckSources(context.Background(), srcs, func(fr stack.FileResult) {
			order = append(order, fr.Index)
		})
		done <- err
	}()
	// Give the fast replica time to race as far ahead as admission
	// allows while the slow replica is parked before source 0.
	time.Sleep(200 * time.Millisecond)
	close(gate)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("CheckSources: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sharded sweep deadlocked: the fast replica starved the slow one of admission slots")
	}
	if len(order) != len(srcs) {
		t.Fatalf("emitted %d results, want %d", len(order), len(srcs))
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("emission %d has index %d; order must be strictly increasing from 0", i, idx)
		}
	}
}

// TestFromHosts: the -remote list translation shared by the CLIs.
func TestFromHosts(t *testing.T) {
	if d, err := FromHosts(" host1:1 , ,host2:2 "); err != nil || len(d.replicas) != 2 {
		t.Errorf("FromHosts = %v, %v; want 2 replicas", d, err)
	}
	if _, err := FromHosts(" , "); err == nil {
		t.Error("empty list did not error")
	}
}

// TestEmptyReplicas: constructing a dispatcher with no replicas is a
// programming error and fails loudly.
func TestEmptyReplicas(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New() with no replicas did not panic")
		}
	}()
	New()
}
