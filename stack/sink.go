package stack

// Result sinks. The streaming sweep (and CheckSources) delivers
// finished files strictly in archive order; a Sink consumes that
// stream and renders it in some output format. Three implementations
// ship with the package:
//
//   - NewTextSink: the classic human-readable stream, byte-identical
//     to what the sweep CLI printed before sinks existed;
//   - NewJSONLSink: one JSON object per file, for piping into report
//     pipelines;
//   - NewSARIFSink: a SARIF 2.1.0 log, buffered until Close, for code
//     scanning UIs.
//
// A sink returning an error aborts the sweep; Close flushes whatever
// the format buffers.

import (
	"encoding/json"
	"fmt"
	"io"
)

// Sink consumes per-file results in input order.
type Sink interface {
	// Emit is called once per file, in strictly increasing Index
	// order, as soon as the file and every earlier one have finished.
	Emit(FileResult) error
	// Close flushes buffered output. No Emit calls follow Close.
	Close() error
}

// --- Text -----------------------------------------------------------------

type textSink struct{ w io.Writer }

// NewTextSink returns a sink that renders each file's diagnostics in
// the classic streaming text form: a "file: N report(s)" header line
// followed by the frozen textual rendering of each diagnostic,
// skipping files with no findings. The output is byte-identical to the
// pre-sink sweep CLI stream.
func NewTextSink(w io.Writer) Sink { return textSink{w} }

func (s textSink) Emit(fr FileResult) error {
	if len(fr.Diagnostics) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(s.w, "%s: %d report(s)\n", fr.File, len(fr.Diagnostics)); err != nil {
		return err
	}
	for _, d := range fr.Diagnostics {
		if _, err := fmt.Fprintf(s.w, "  %v\n", d); err != nil {
			return err
		}
	}
	return nil
}

func (textSink) Close() error { return nil }

// --- JSON lines -----------------------------------------------------------

type jsonlSink struct{ enc *json.Encoder }

// NewJSONLSink returns a sink that writes one JSON object per file —
// every file, including clean ones, so consumers can track coverage.
// Timing fields are wall-clock measurements; all other fields are
// deterministic.
func NewJSONLSink(w io.Writer) Sink {
	return jsonlSink{json.NewEncoder(w)}
}

func (s jsonlSink) Emit(fr FileResult) error { return s.enc.Encode(fr) }

func (jsonlSink) Close() error { return nil }

// --- SARIF ----------------------------------------------------------------

// SARIF 2.1.0 structures, reduced to the slice this tool emits.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	Name             string       `json:"name"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID     string          `json:"ruleId"`
	Level      string          `json:"level"`
	Message    sarifMessage    `json:"message"`
	Locations  []sarifLocation `json:"locations,omitempty"`
	Properties map[string]any  `json:"properties,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifRules is the static rule table, one entry per stable rule code.
var sarifRules = []sarifRule{
	{ID: RuleElimination, Name: "UnstableCodeElimination",
		ShortDescription: sarifMessage{Text: "reachable code becomes unreachable under the well-defined program assumption"}},
	{ID: RuleSimplifyBool, Name: "UnstableBooleanSimplification",
		ShortDescription: sarifMessage{Text: "boolean expression folds to a constant under the well-defined program assumption"}},
	{ID: RuleSimplifyAlgebra, Name: "UnstableAlgebraicSimplification",
		ShortDescription: sarifMessage{Text: "comparison simplifies algebraically under the well-defined program assumption"}},
}

type sarifSink struct {
	w       io.Writer
	results []sarifResult
}

// NewSARIFSink returns a sink that accumulates diagnostics and writes
// a single SARIF 2.1.0 log on Close. Rule IDs are the package's stable
// rule codes; the minimal UB set and the §6.2 category travel in each
// result's property bag.
func NewSARIFSink(w io.Writer) Sink { return &sarifSink{w: w} }

func (s *sarifSink) Emit(fr FileResult) error {
	for _, d := range fr.Diagnostics {
		msg := fmt.Sprintf("unstable code in %s [%s]", d.Function, d.Algo)
		if d.Simplified != "" {
			msg += fmt.Sprintf(" — simplifies to %s", d.Simplified)
		}
		res := sarifResult{
			RuleID:  d.Code,
			Level:   "warning",
			Message: sarifMessage{Text: msg},
			Properties: map[string]any{
				"category": d.Category,
				"function": d.Function,
			},
		}
		if len(d.UB) > 0 {
			ubs := make([]map[string]any, 0, len(d.UB))
			for _, u := range d.UB {
				ubs = append(ubs, map[string]any{
					"code": u.Code,
					"kind": u.Kind,
					"line": u.Span.Line,
					"col":  u.Span.Col,
				})
			}
			res.Properties["ub"] = ubs
		}
		uri := d.Span.File
		if uri == "" {
			uri = fr.File
		}
		if d.Span.Line > 0 {
			res.Locations = []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: uri},
					Region:           &sarifRegion{StartLine: d.Span.Line, StartColumn: d.Span.Col},
				},
			}}
		} else {
			res.Locations = []sarifLocation{{
				PhysicalLocation: sarifPhysical{ArtifactLocation: sarifArtifact{URI: uri}},
			}}
		}
		s.results = append(s.results, res)
	}
	return nil
}

func (s *sarifSink) Close() error {
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "stack",
				InformationURI: "https://css.csail.mit.edu/stack/",
				Rules:          sarifRules,
			}},
			Results: s.results,
		}},
	}
	if log.Runs[0].Results == nil {
		log.Runs[0].Results = []sarifResult{}
	}
	out, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = s.w.Write(out)
	return err
}
