package stack

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// ssaRichSrc has an address-taken local and duplicate subexpressions,
// so the SSA pass stack has real work to do on top of the unstable
// pointer-overflow check.
const ssaRichSrc = `
int walk(char *buf, char *buf_end, unsigned int len) {
	int n = 0;
	int *p = &n;
	*p = (int)len * 2;
	*p = (int)len * 2 + 1;
	if (buf + len >= buf_end)
		return -1;
	if (buf + len < buf)
		return -1; /* deleted by gcc: pointer overflow is undefined */
	return *p;
}
`

// TestWithSSAIdenticalDiagnostics: SSA is the default; turning it off
// (the legacy reference pipeline) must not change any diagnostic —
// same files, same codes, same rendered text.
func TestWithSSAIdenticalDiagnostics(t *testing.T) {
	srcs := []Source{
		{Name: "fig1.c", Text: fig1Src},
		{Name: "div.c", Text: divSrc},
		{Name: "ssa.c", Text: ssaRichSrc},
	}
	for _, src := range srcs {
		legacy, err := New(WithSSA(false)).CheckSource(context.Background(), src.Name, src.Text)
		if err != nil {
			t.Fatalf("%s legacy: %v", src.Name, err)
		}
		ssa, err := New().CheckSource(context.Background(), src.Name, src.Text)
		if err != nil {
			t.Fatalf("%s: %v", src.Name, err)
		}
		if !reflect.DeepEqual(legacy.Diagnostics, ssa.Diagnostics) {
			t.Errorf("%s: diagnostics differ between WithSSA(false) and the default:\n legacy: %+v\n ssa:    %+v",
				src.Name, legacy.Diagnostics, ssa.Diagnostics)
		}
		if len(legacy.Diagnostics) == 0 {
			t.Errorf("%s: no diagnostics; comparison is vacuous", src.Name)
		}
	}
}

// TestWithSSAStatsTrailer: pass counters appear in the JSON stats by
// default and vanish under WithSSA(false) — with omitempty zeros, the
// legacy trailer bytes are untouched (the golden-JSON tests depend on
// that).
func TestWithSSAStatsTrailer(t *testing.T) {
	ssa, err := New().CheckSource(context.Background(), "ssa.c", ssaRichSrc)
	if err != nil {
		t.Fatal(err)
	}
	if ssa.Stats.GVNHits == 0 {
		t.Error("GVNHits = 0 on a source with duplicate computations")
	}
	if ssa.Stats.PromotedAllocas == 0 {
		t.Error("PromotedAllocas = 0 on a source with an address-taken local")
	}
	if ssa.Stats.EliminatedStores == 0 {
		t.Error("EliminatedStores = 0 on a source with an overwritten store")
	}
	if ssa.Stats.DomOrderedSkips == 0 {
		t.Error("DomOrderedSkips = 0 on an acyclic function with solver queries")
	}
	if ssa.Stats.SSASharpened == 0 {
		t.Error("SSASharpened = 0 though promotion fired")
	}

	legacy, err := New(WithSSA(false)).CheckSource(context.Background(), "ssa.c", ssaRichSrc)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(legacy.Stats)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"promotedAllocas", "eliminatedStores", "gvnHits",
		"sccpFoldedValues", "sccpFoldedBranches", "sccpUnreachableBlocks",
		"crossBlockGvnHits", "hoistedUbTerms", "domOrderedSkips",
		"ssaSharpened",
	} {
		if strings.Contains(string(raw), key) {
			t.Errorf("WithSSA(false) stats trailer leaks %q: %s", key, raw)
		}
	}
}
