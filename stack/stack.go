// Package stack is the public, versioned API of the STACK unstable-code
// checker reproduction (conf_sosp_WangZKS13). It wraps the internal
// pipeline — C frontend, SSA IR, word-level rewriting, incremental
// bit-vector solving, the solver-based elimination/simplification
// algorithms — behind a context-aware Analyzer that returns structured
// Diagnostic values with stable rule codes instead of preformatted
// strings.
//
// Construct an Analyzer with functional options:
//
//	az := stack.New(
//		stack.WithSolverTimeout(5*time.Second),
//		stack.WithWorkers(8),
//	)
//	res, err := az.CheckSource(ctx, "fig1.c", src)
//
// Every entry point takes a context.Context that is honored all the way
// down to the CDCL search loop: cancelling it (or letting its deadline
// expire) aborts the analysis within one solver check interval.
//
// Results can be rendered through pluggable sinks (NewTextSink,
// NewJSONLSink, NewSARIFSink) fed in archive order by the streaming
// sweep, or formatted with FormatDiagnostics, whose output is
// byte-identical to the internal checker's classic text form.
//
// Stability contract: diagnostic rule codes (RuleElimination, ...) and
// UB-condition codes (UBCodePointerOverflow, ...) are append-only —
// existing codes never change meaning or disappear — and the text
// rendering of a Diagnostic is frozen, so sinks and downstream report
// pipelines can rely on both.
package stack

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/corpus"
	inorder "repro/internal/emit"
	"repro/internal/ir"
	"repro/stack/cache"
)

// Analyzer is a configured instance of the checker. It is safe for
// concurrent use: every analysis allocates its own internal checker
// state, so one Analyzer can serve many requests (cmd/stackd holds a
// single Analyzer for the whole service).
type Analyzer struct {
	opts     core.Options
	workers  int
	buffered bool
	cache    *resultCache // nil without WithCache
}

// config collects option values before the Analyzer is built.
type config struct {
	opts     core.Options
	workers  int
	buffered bool
	cache    cache.Cache
}

// Option configures an Analyzer.
type Option func(*config)

// New returns an Analyzer with the paper's default configuration
// (5-second query timeout, origin filtering, minimal UB sets,
// inlining, the SSA pass stack — see WithSSA) modified by the given
// options.
func New(options ...Option) *Analyzer {
	cfg := config{opts: core.DefaultOptions}
	for _, o := range options {
		o(&cfg)
	}
	az := &Analyzer{opts: cfg.opts, workers: cfg.workers, buffered: cfg.buffered}
	if cfg.cache != nil {
		// Built after all options have applied, so the key fingerprint
		// reflects the analyzer's final configuration.
		az.cache = newResultCache(cfg.cache, cfg.opts)
	}
	return az
}

// WithSolverTimeout bounds each solver query by a wall-clock duration
// (the paper used 5 seconds, §6.4). Zero means no per-query timeout;
// the request context's deadline still applies.
func WithSolverTimeout(d time.Duration) Option {
	return func(c *config) { c.opts.Timeout = d }
}

// WithMaxConflictsPerQuery bounds solver effort per query by a
// deterministic conflict budget. Zero means unbounded.
func WithMaxConflictsPerQuery(n int64) Option {
	return func(c *config) { c.opts.MaxConflictsPerQuery = n }
}

// WithWorkers sets the number of goroutines per pipeline stage for
// CheckSources and Sweep; values <= 0 mean one per CPU. Diagnostics
// and counts are identical for every worker count.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithInlining toggles the IR inlining stage (paper §4.2; on by
// default).
func WithInlining(on bool) Option {
	return func(c *config) { c.opts.Inline = on }
}

// WithMinUBSets toggles the minimal UB-condition-set computation of
// Fig. 8 (on by default). Off saves the masking loop's solver queries.
func WithMinUBSets(on bool) Option {
	return func(c *config) { c.opts.MinUBSets = on }
}

// WithOriginFilter toggles suppression of reports whose unstable
// fragment came from a macro expansion or inlined function (paper
// §4.2; on by default).
func WithOriginFilter(on bool) Option {
	return func(c *config) { c.opts.FilterOrigins = on }
}

// WithScratchSolving disables incremental solving: every query runs on
// a fresh SAT core, the differential-test reference mode. Diagnostics
// are identical either way; only the work differs.
func WithScratchSolving(on bool) Option {
	return func(c *config) { c.opts.ScratchSolve = on }
}

// WithSSA toggles the pruned-SSA pass stack run over each function
// before encoding: mem2reg promotion of non-escaping allocas, sparse
// conditional constant propagation, dominator-ordered value numbering,
// dead-store elimination, and loop-invariant UB hoisting — plus, on
// acyclic functions, the dominator-ordered elimination walk that skips
// solver queries whose answer a dominated block already implied.
//
// On by default. Diagnostics are byte-identical to the legacy pipeline
// across the synthetic corpus (the differential gate
// TestSSAVsLegacyByteIdentity, raced over worker counts and sweep
// modes); the passes change the work, not the verdicts — promoted
// loads stop encoding as distinct opaque solver variables, constant
// branch conditions die in the lattice instead of the SAT core, and
// duplicate value graphs hash-cons across the whole function.
// WithSSA(false) is the escape hatch and the differential reference:
// every per-pass fuzz oracle compares against it. The pass counters
// surface in Stats as PromotedAllocas / EliminatedStores / GVNHits /
// SCCPFoldedValues / SCCPFoldedBranches / SCCPUnreachableBlocks /
// CrossBlockGVNHits / HoistedUBTerms / DomOrderedSkips.
func WithSSA(on bool) Option {
	return func(c *config) { c.opts.SSA = on }
}

// WithLearntBudget bounds the learned clauses an incremental solving
// session carries from one query into the next: after each query the
// learnt database is trimmed toward n (locked and binary clauses
// always survive). Bounds a long session's solver memory at a small
// cost in rediscovered conflicts. Zero (the default) means unbounded;
// ignored under WithScratchSolving, where nothing outlives a query.
func WithLearntBudget(n int) Option {
	return func(c *config) { c.opts.LearntBudget = n }
}

// WithCache attaches a content-addressed result cache: before building
// IR for a source, CheckSource, CheckSources, and Sweep look up the
// SHA-256 of the source bytes combined with a canonical fingerprint of
// every result-affecting option; a hit replays the stored diagnostics
// and per-file shape stats without running the frontend or the solver,
// a miss analyzes the source and stores the finished result. Because
// hits flow through the same in-order emitter as fresh results, warm
// output is byte-identical to cold output for any worker count, in
// both streaming and buffered modes. Options that cannot affect
// results — WithWorkers, WithBufferedSweep, the sink format — never
// enter the key, so one cache serves every execution strategy.
//
// Use cache.NewMemory for an in-process LRU, cache.NewDisk for a
// persistent tier that survives restarts, or cache.NewTiered(mem,
// disk) for both. The cache may be shared between Analyzers (it is
// concurrency-safe); entries are only ever served to an Analyzer whose
// options fingerprint matches the one they were stored under. Traffic
// shows up as Stats.CacheResultHits / CacheResultMisses and in
// Analyzer.CacheStats.
func WithCache(c cache.Cache) Option {
	return func(cfg *config) { cfg.cache = c }
}

// WithBufferedSweep selects the legacy collect-then-merge sweep
// strategy instead of the default O(Workers)-memory streaming emitter.
// Output is byte-identical either way. Ignored when Sweep is given a
// sink, which requires streaming.
func WithBufferedSweep(on bool) Option {
	return func(c *config) { c.buffered = on }
}

// CompilerEnv models the gcc workaround options of paper §7: each flag
// promises defined behavior for some UB kinds, removing the matching
// conditions from the well-defined program assumption.
type CompilerEnv struct {
	// WrapV is -fwrapv: signed integer arithmetic wraps.
	WrapV bool
	// NoStrictOverflow is -fno-strict-overflow: pointer arithmetic
	// wraps too.
	NoStrictOverflow bool
	// NoDeleteNullPointerChecks is -fno-delete-null-pointer-checks.
	NoDeleteNullPointerChecks bool
}

// WithCompilerEnv sets the compiler-flag environment the analysis
// assumes the code will be built under.
func WithCompilerEnv(env CompilerEnv) Option {
	return func(c *config) {
		c.opts.Flags = core.Flags{
			WrapV:                     env.WrapV,
			NoStrictOverflow:          env.NoStrictOverflow,
			NoDeleteNullPointerChecks: env.NoDeleteNullPointerChecks,
		}
	}
}

// Stats aggregates analysis effort: the quantities of the paper's
// Figure 16 plus the counters of the rewrite and incremental-solving
// layers.
type Stats struct {
	Functions     int   `json:"functions"`
	Blocks        int   `json:"blocks"`
	Queries       int64 `json:"queries"`
	Timeouts      int64 `json:"timeouts"`
	RewriteHits   int64 `json:"rewriteHits"`
	TermsCreated  int64 `json:"termsCreated"`
	FastPaths     int64 `json:"fastPaths"`
	TermsBlasted  int64 `json:"termsBlasted"`
	BlastPasses   int64 `json:"blastPasses"`
	LearntsReused int64 `json:"learntsReused"`
	// CacheHits counts term constructions answered from the builder's
	// hash-consing table (commuted chains canonicalize onto one node);
	// LearntsDropped counts learned clauses discarded by database
	// reductions and budget trims; ArenaBytesReused counts bytes served
	// from recycled term-arena slabs instead of fresh allocations.
	CacheHits        int64 `json:"cacheHits"`
	LearntsDropped   int64 `json:"learntsDropped"`
	ArenaBytesReused int64 `json:"arenaBytesReused"`
	// SSA pass counters (all zero under WithSSA(false)):
	// PromotedAllocas counts address-taken variables mem2reg rewrote
	// into SSA values, EliminatedStores counts stores removed by
	// promotion and dead-store elimination, GVNHits counts values
	// merged into a structurally identical representative in the same
	// block, SCCPFoldedValues / SCCPFoldedBranches /
	// SCCPUnreachableBlocks count what sparse conditional constant
	// propagation proved, CrossBlockGVNHits counts merges into a
	// dominating block's representative, HoistedUBTerms counts
	// UB-carrying instructions hoisted out of loop headers, and
	// DomOrderedSkips counts elimination queries skipped because a
	// dominated block's satisfiable verdict implied them.
	PromotedAllocas       int64 `json:"promotedAllocas,omitempty"`
	EliminatedStores      int64 `json:"eliminatedStores,omitempty"`
	GVNHits               int64 `json:"gvnHits,omitempty"`
	SCCPFoldedValues      int64 `json:"sccpFoldedValues,omitempty"`
	SCCPFoldedBranches    int64 `json:"sccpFoldedBranches,omitempty"`
	SCCPUnreachableBlocks int64 `json:"sccpUnreachableBlocks,omitempty"`
	CrossBlockGVNHits     int64 `json:"crossBlockGvnHits,omitempty"`
	HoistedUBTerms        int64 `json:"hoistedUbTerms,omitempty"`
	DomOrderedSkips       int64 `json:"domOrderedSkips,omitempty"`
	// SSASharpened counts functions where a pass proved a fact beyond
	// the encoding layer's rewrite rules. When absent, the run's output
	// is guaranteed byte-identical to WithSSA(false) — the key the
	// differential fuzz oracle and the soak recipe in EXPERIMENTS.md
	// both gate on.
	SSASharpened int64 `json:"ssaSharpened,omitempty"`
	// Result-cache traffic (all zero unless WithCache is configured):
	// CacheResultHits counts sources answered whole from the cache —
	// frontend, IR, and solver all skipped — CacheResultMisses counts
	// sources analyzed for real. On a hit the shape counters
	// (Functions, Blocks) replay from the cached entry while the effort
	// counters (Queries, TermsBlasted, ...) stay untouched: a warm run
	// genuinely does no solver work.
	CacheResultHits   int64 `json:"cacheResultHits,omitempty"`
	CacheResultMisses int64 `json:"cacheResultMisses,omitempty"`
}

func statsOf(st core.Stats) Stats {
	return Stats{
		Functions:         st.Functions,
		Blocks:            st.Blocks,
		Queries:           st.Queries,
		Timeouts:          st.Timeouts,
		RewriteHits:       st.RewriteHits,
		TermsCreated:      st.TermsCreated,
		FastPaths:         st.FastPaths,
		TermsBlasted:      st.TermsBlasted,
		BlastPasses:       st.BlastPasses,
		LearntsReused:     st.LearntsReused,
		CacheHits:         st.CacheHits,
		LearntsDropped:    st.LearntsDropped,
		ArenaBytesReused:  st.ArenaBytesReused,
		PromotedAllocas:       st.PromotedAllocas,
		EliminatedStores:      st.EliminatedStores,
		GVNHits:               st.GVNHits,
		SCCPFoldedValues:      st.SCCPFoldedValues,
		SCCPFoldedBranches:    st.SCCPFoldedBranches,
		SCCPUnreachableBlocks: st.SCCPUnreachableBlocks,
		CrossBlockGVNHits:     st.CrossBlockGVNHits,
		HoistedUBTerms:        st.HoistedUBTerms,
		DomOrderedSkips:       st.DomOrderedSkips,
		SSASharpened:          st.SSASharpened,
		CacheResultHits:       st.CacheResultHits,
		CacheResultMisses:     st.CacheResultMisses,
	}
}

// Result is one input's finished analysis.
type Result struct {
	File        string       `json:"file"`
	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
	Stats       Stats        `json:"stats"`
}

// Source is one named C translation unit for CheckSources.
type Source struct {
	Name string
	Text string
}

// checkOne runs the frontend and the checker over one source under ctx.
func checkOne(ctx context.Context, checker *core.Checker, name, src string) ([]*core.Report, error) {
	f, err := cc.Parse(name, src)
	if err != nil {
		return nil, err
	}
	if err := cc.Check(f); err != nil {
		return nil, err
	}
	p, err := ir.Build(f)
	if err != nil {
		return nil, err
	}
	return checker.CheckProgram(ctx, p)
}

// CheckSource analyzes one C source and returns its diagnostics.
// Cancelling ctx aborts the analysis within one solver check interval
// and returns ctx's error.
func (a *Analyzer) CheckSource(ctx context.Context, name, src string) (*Result, error) {
	if a.cache != nil {
		if cf, ok := a.cache.Lookup(name, src); ok {
			var st core.Stats
			replayCacheHit(&st, cf)
			return &Result{
				File:        name,
				Diagnostics: diagnosticsOf(cf.Reports),
				Stats:       statsOf(st),
			}, nil
		}
	}
	checker := core.New(a.opts)
	reports, err := checkOne(ctx, checker, name, src)
	if err != nil {
		return nil, err
	}
	st := checker.Stats()
	if a.cache != nil {
		st.CacheResultMisses = 1
		a.cache.Store(name, src, corpus.CachedFile{
			Functions: st.Functions,
			Blocks:    st.Blocks,
			Reports:   reports,
		})
	}
	return &Result{
		File:        name,
		Diagnostics: diagnosticsOf(reports),
		Stats:       statsOf(st),
	}, nil
}

// replayCacheHit folds one cache hit into st: the hit counter plus the
// program-shape counters the checker would have accumulated. Effort
// counters stay zero — the hit did no solver work.
func replayCacheHit(st *core.Stats, cf corpus.CachedFile) {
	st.CacheResultHits++
	st.Functions += cf.Functions
	st.Blocks += cf.Blocks
	for _, r := range cf.Reports {
		st.ReportsByAlgo[r.Algo]++
	}
}

// CheckFile reads path and analyzes it as a C source.
func (a *Analyzer) CheckFile(ctx context.Context, path string) (*Result, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return a.CheckSource(ctx, path, string(src))
}

// CheckSources analyzes several sources concurrently (the Workers
// option sets the pool size) and calls emit once per source, in input
// order, as soon as that source and every earlier one have finished —
// the same in-order streaming discipline as the archive sweep (both
// run on the shared emitter, emit.Ordered), with O(Workers) results
// buffered at any moment. Diagnostics are identical for every worker
// count.
//
// On the first error (in input order) emission stops and the error,
// annotated with the source name, is returned; sources after the
// failing one are skipped. The returned Stats cover the sources that
// were analyzed.
func (a *Analyzer) CheckSources(ctx context.Context, srcs []Source, emit func(FileResult)) (Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(srcs) == 0 {
		return Stats{}, nil
	}
	workers := a.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(srcs) {
		workers = len(srcs)
	}

	type outcome struct {
		diags []Diagnostic
		err   error
	}
	// Delivery runs on the emitter goroutine, strictly in input order;
	// firstErr needs no lock because only that goroutine touches it.
	var firstErr error
	ord := inorder.NewOrdered(4*workers, func(idx int, o outcome) {
		if firstErr != nil {
			return
		}
		if o.err != nil {
			firstErr = fmt.Errorf("%s: %w", srcs[idx].Name, o.err)
			return
		}
		if emit != nil {
			emit(FileResult{
				Index:       idx,
				File:        srcs[idx].Name,
				Diagnostics: o.diags,
			})
		}
	})
	workerStats := make([]core.Stats, workers)
	cacheStats := make([]core.Stats, workers) // per-worker result-cache traffic
	idxCh := make(chan int)
	// failedIdx holds the smallest input index that has errored so
	// far. Skipping strictly later indices (never earlier ones) keeps
	// the fail-fast path race-free: a source before the first error is
	// always analyzed and emitted, even if its worker observes the
	// failure flag after dequeuing it. Skipped indices still Put an
	// empty outcome, so the delivery sequence has no gaps and every
	// admission slot frees.
	var failedIdx atomic.Int64
	failedIdx.Store(int64(len(srcs)))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			checker := core.New(a.opts)
			for i := range idxCh {
				// Fail fast: skip sources after the earliest error. The
				// emitter's delivery callback stops at the error, so they
				// are never emitted.
				if int64(i) > failedIdx.Load() {
					ord.Put(i, outcome{})
					continue
				}
				if a.cache != nil {
					if cf, ok := a.cache.Lookup(srcs[i].Name, srcs[i].Text); ok {
						replayCacheHit(&cacheStats[w], cf)
						ord.Put(i, outcome{diags: diagnosticsOf(cf.Reports)})
						continue
					}
					cacheStats[w].CacheResultMisses++
				}
				before := checker.Stats()
				reports, err := checkOne(ctx, checker, srcs[i].Name, srcs[i].Text)
				if err != nil {
					for {
						cur := failedIdx.Load()
						if int64(i) >= cur || failedIdx.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					ord.Put(i, outcome{err: err})
					continue
				}
				if a.cache != nil {
					after := checker.Stats()
					a.cache.Store(srcs[i].Name, srcs[i].Text, corpus.CachedFile{
						Functions: after.Functions - before.Functions,
						Blocks:    after.Blocks - before.Blocks,
						Reports:   reports,
					})
				}
				ord.Put(i, outcome{diags: diagnosticsOf(reports)})
			}
			workerStats[w] = checker.Stats()
		}(w)
	}
	// The admission window caps how far workers run ahead of a slow
	// early source, bounding the emitter's buffering at O(workers).
	// Every index is eventually Put, so the window always drains and
	// Admit cannot block indefinitely.
	for i := range srcs {
		ord.Admit(nil)
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	ord.Close()

	var st core.Stats
	for _, ws := range workerStats {
		st.Add(ws)
	}
	for _, cs := range cacheStats {
		st.Add(cs)
	}
	return statsOf(st), firstErr
}
