package stack

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
)

// fig1Src is the paper's opening example: the pointer-overflow sanity
// check that gcc silently deletes. One deterministic elimination
// diagnostic.
const fig1Src = `
int parse_header(char *buf, char *buf_end, unsigned int len) {
	if (buf + len >= buf_end)
		return -1; /* len too large */
	if (buf + len < buf)
		return -1; /* overflow check: compilers delete this */
	return 0;
}
`

// divSrc adds a division-driven report with a simplification (the
// check follows the division, the §6.2.1 Postgres shape), so the
// identity tests cover the Simplified rendering path too.
const divSrc = `
int scale(int x, int y) {
	int q = x / y;
	if (y == 0)
		return -1;
	return q;
}
`

func analyzeReports(t *testing.T, name, src string) []*core.Report {
	t.Helper()
	checker := core.New(core.DefaultOptions)
	reports, err := checkOne(context.Background(), checker, name, src)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return reports
}

// TestFormatDiagnosticsByteIdentity pins the public text rendering to
// the internal checker's classic FormatReports output — the frozen
// format the ROADMAP invariant records.
func TestFormatDiagnosticsByteIdentity(t *testing.T) {
	for _, tc := range []struct{ name, src string }{
		{"fig1.c", fig1Src},
		{"div.c", divSrc},
	} {
		reports := analyzeReports(t, tc.name, tc.src)
		if len(reports) == 0 {
			t.Fatalf("%s: expected reports", tc.name)
		}
		want := core.FormatReports(reports)
		got := FormatDiagnostics(diagnosticsOf(reports))
		if got != want {
			t.Errorf("%s: text rendering diverged\n--- internal ---\n%s--- public ---\n%s", tc.name, want, got)
		}
	}
	if got, want := FormatDiagnostics(nil), core.FormatReports(nil); got != want {
		t.Errorf("empty rendering: got %q want %q", got, want)
	}
}

// TestDiagnosticCodesStable pins the append-only code registries.
func TestDiagnosticCodesStable(t *testing.T) {
	if RuleElimination != "STACK-E001" || RuleSimplifyBool != "STACK-S001" || RuleSimplifyAlgebra != "STACK-S002" {
		t.Error("rule codes changed; the registry is append-only")
	}
	wantUB := []string{"UB001", "UB002", "UB003", "UB004", "UB005", "UB006", "UB007", "UB008", "UB009", "UB010"}
	for i, w := range wantUB {
		if ubCodes[i] != w {
			t.Errorf("ubCodes[%d] = %q, want %q; the registry is append-only", i, ubCodes[i], w)
		}
	}
	// The registries must keep pace with the internal enums: a UB kind
	// or algorithm added to core without a code here would panic the
	// conversion at runtime.
	if len(ubCodes) != core.NumUBKinds {
		t.Errorf("ubCodes has %d entries but core models %d UB kinds; append the new code(s)",
			len(ubCodes), core.NumUBKinds)
	}
	if want := int(core.AlgoSimplifyAlgebra) + 1; len(ruleCodes) != want {
		t.Errorf("ruleCodes has %d entries but core has %d algorithms; append the new code(s)",
			len(ruleCodes), want)
	}
}

const goldenDiagnosticJSON = `{
  "code": "STACK-E001",
  "algo": "elimination",
  "function": "parse_header",
  "span": {
    "file": "figure1.c",
    "line": 6,
    "col": 11
  },
  "category": "urgent optimization bug",
  "ub": [
    {
      "code": "UB001",
      "kind": "pointer overflow",
      "span": {
        "file": "figure1.c",
        "line": 3,
        "col": 10
      }
    }
  ]
}`

// TestGoldenJSONRoundTrip: the wire encoding of a real diagnostic is
// pinned byte-for-byte, and decoding it recovers the identical value.
func TestGoldenJSONRoundTrip(t *testing.T) {
	reports := analyzeReports(t, "figure1.c", fig1Src)
	if len(reports) != 1 {
		t.Fatalf("fig1 produced %d reports, want 1", len(reports))
	}
	d := diagnosticOf(reports[0])
	enc, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != goldenDiagnosticJSON {
		t.Errorf("JSON encoding diverged from golden\n--- got ---\n%s\n--- want ---\n%s", enc, goldenDiagnosticJSON)
	}
	var back Diagnostic
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, d) {
		t.Errorf("round trip lost data: %+v != %+v", back, d)
	}
}

const goldenSARIF = `{
  "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "stack",
          "informationUri": "https://css.csail.mit.edu/stack/",
          "rules": [
            {
              "id": "STACK-E001",
              "name": "UnstableCodeElimination",
              "shortDescription": {
                "text": "reachable code becomes unreachable under the well-defined program assumption"
              }
            },
            {
              "id": "STACK-S001",
              "name": "UnstableBooleanSimplification",
              "shortDescription": {
                "text": "boolean expression folds to a constant under the well-defined program assumption"
              }
            },
            {
              "id": "STACK-S002",
              "name": "UnstableAlgebraicSimplification",
              "shortDescription": {
                "text": "comparison simplifies algebraically under the well-defined program assumption"
              }
            }
          ]
        }
      },
      "results": [
        {
          "ruleId": "STACK-E001",
          "level": "warning",
          "message": {
            "text": "unstable code in parse_header [elimination]"
          },
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "figure1.c"
                },
                "region": {
                  "startLine": 6,
                  "startColumn": 11
                }
              }
            }
          ],
          "properties": {
            "category": "urgent optimization bug",
            "function": "parse_header",
            "ub": [
              {
                "code": "UB001",
                "col": 10,
                "kind": "pointer overflow",
                "line": 3
              }
            ]
          }
        }
      ]
    }
  ]
}
`

// TestGoldenSARIF pins the SARIF encoding of a real diagnostic.
func TestGoldenSARIF(t *testing.T) {
	reports := analyzeReports(t, "figure1.c", fig1Src)
	var buf bytes.Buffer
	sink := NewSARIFSink(&buf)
	if err := sink.Emit(FileResult{File: "figure1.c", Diagnostics: diagnosticsOf(reports)}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != goldenSARIF {
		t.Errorf("SARIF encoding diverged from golden\n--- got ---\n%s\n--- want ---\n%s", buf.String(), goldenSARIF)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("golden SARIF does not decode: %v", err)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) != 1 {
		t.Errorf("unexpected SARIF shape: %+v", log)
	}
}

// TestSARIFEmptyRun: a clean sweep still encodes a decodable log with
// an empty (not null) results array.
func TestSARIFEmptyRun(t *testing.T) {
	var buf bytes.Buffer
	sink := NewSARIFSink(&buf)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Errorf("empty run must encode results as []:\n%s", buf.String())
	}
}

// TestJSONLSinkRoundTrip: every emitted line decodes back to the
// emitted FileResult.
func TestJSONLSinkRoundTrip(t *testing.T) {
	reports := analyzeReports(t, "fig1.c", fig1Src)
	in := []FileResult{
		{Index: 0, Package: "p0", File: "fig1.c", Functions: 1, Diagnostics: diagnosticsOf(reports)},
		{Index: 1, Package: "p0", File: "clean.c", Functions: 2},
	}
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for _, fr := range in {
		if err := sink.Emit(fr); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(in) {
		t.Fatalf("got %d lines, want %d", len(lines), len(in))
	}
	for i, line := range lines {
		var back FileResult
		if err := json.Unmarshal([]byte(line), &back); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if !reflect.DeepEqual(back, in[i]) {
			t.Errorf("line %d round trip: %+v != %+v", i, back, in[i])
		}
	}
}

// sweepArchive is a small archive with planted bugs for the sweep
// identity and cancellation tests.
func sweepArchive() []corpus.Package {
	return corpus.GenerateArchive(corpus.ArchiveConfig{
		Packages: 6, FilesPerPackage: 2, FuncsPerFile: 3,
		UnstableFraction: 1, Seed: 7,
	})
}

func publicPackages(pkgs []corpus.Package) []Package {
	out := make([]Package, len(pkgs))
	for i, p := range pkgs {
		out[i] = Package{Name: p.Name, Files: p.Files}
	}
	return out
}

// TestTextSinkSweepByteIdentity: the text sink fed by Analyzer.Sweep
// reproduces, byte for byte, the legacy streaming CLI output (driving
// the internal sweeper directly), for Workers ∈ {1, 4, 16} — the
// acceptance bar of the API redesign.
func TestTextSinkSweepByteIdentity(t *testing.T) {
	pkgs := sweepArchive()
	for _, workers := range []int{1, 4, 16} {
		// No wall-clock budget, so the output is strictly deterministic.
		az := New(WithWorkers(workers), WithSolverTimeout(0))

		var want bytes.Buffer
		sw := &corpus.Sweeper{Options: az.coreOptions(), Workers: workers}
		wantRes, err := sw.RunStream(context.Background(), pkgs, func(fr corpus.FileResult) {
			if len(fr.Reports) == 0 {
				return
			}
			fmt.Fprintf(&want, "%s: %d report(s)\n", fr.File, len(fr.Reports))
			for _, r := range fr.Reports {
				fmt.Fprintf(&want, "  %v\n", r)
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: legacy sweep: %v", workers, err)
		}

		var got bytes.Buffer
		res, err := az.Sweep(context.Background(), publicPackages(pkgs), NewTextSink(&got))
		if err != nil {
			t.Fatalf("workers=%d: Sweep: %v", workers, err)
		}
		if got.String() != want.String() {
			t.Errorf("workers=%d: text sink output diverged from legacy stream\n--- got ---\n%s--- want ---\n%s",
				workers, got.String(), want.String())
		}
		if res.Reports != wantRes.Reports || res.Queries != wantRes.Queries || res.Files != wantRes.Files ||
			res.Functions != wantRes.Functions || res.PackagesWithReports != wantRes.PackagesWithReports {
			t.Errorf("workers=%d: summary mismatch: %+v vs internal %+v", workers, res, wantRes)
		}
		if want.Len() == 0 {
			t.Fatal("archive produced no reports; identity test is vacuous")
		}
	}
}

// TestCheckSourcesOrderAndErrors: emission is in input order, an
// erroring source stops emission at its index, and the error carries
// the source name.
func TestCheckSourcesOrderAndErrors(t *testing.T) {
	az := New(WithWorkers(4))
	srcs := []Source{
		{Name: "a.c", Text: fig1Src},
		{Name: "b.c", Text: divSrc},
		{Name: "broken.c", Text: "int f( {"},
		{Name: "after.c", Text: fig1Src},
	}
	var order []int
	_, err := az.CheckSources(context.Background(), srcs, func(fr FileResult) {
		order = append(order, fr.Index)
	})
	if err == nil || !strings.Contains(err.Error(), "broken.c") {
		t.Fatalf("error = %v, want one naming broken.c", err)
	}
	if !reflect.DeepEqual(order, []int{0, 1}) {
		t.Errorf("emitted indices %v, want [0 1]", order)
	}

	// Happy path: every index, strictly increasing, any worker count.
	for _, workers := range []int{1, 3} {
		az := New(WithWorkers(workers))
		var got []int
		st, err := az.CheckSources(context.Background(), []Source{
			{Name: "a.c", Text: fig1Src}, {Name: "b.c", Text: divSrc}, {Name: "c.c", Text: fig1Src},
		}, func(fr FileResult) { got = append(got, fr.Index) })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, []int{0, 1, 2}) {
			t.Errorf("workers=%d: indices %v", workers, got)
		}
		if st.Queries == 0 || st.Functions == 0 {
			t.Errorf("workers=%d: stats not merged: %+v", workers, st)
		}
	}
}

// TestCheckSourceCancelled: an already-cancelled context aborts the
// analysis and surfaces ctx.Err().
func TestCheckSourceCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	az := New()
	if _, err := az.CheckSource(ctx, "x.c", fig1Src); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// cancellingSink cancels the sweep context after the first emission —
// a client disconnecting mid-stream.
type cancellingSink struct {
	cancel  context.CancelFunc
	emitted int
}

func (s *cancellingSink) Emit(FileResult) error {
	s.emitted++
	s.cancel()
	return nil
}

func (s *cancellingSink) Close() error { return nil }

// TestSweepCancellation: cancelling the context mid-sweep returns
// ctx.Err() promptly, without deadlocking the pipeline — for both a
// mid-stream cancel and an already-cancelled context.
func TestSweepCancellation(t *testing.T) {
	// Large enough that the whole archive cannot drain between the
	// first emission and the cancel taking effect (the admission
	// window holds at most 4*workers files in flight).
	pkgs := publicPackages(corpus.GenerateArchive(corpus.ArchiveConfig{
		Packages: 20, FilesPerPackage: 2, FuncsPerFile: 3,
		UnstableFraction: 1, Seed: 9,
	}))
	az := New(WithWorkers(4))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &cancellingSink{cancel: cancel}
	type outcome struct {
		res *SweepResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := az.Sweep(ctx, pkgs, sink)
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", o.err)
		}
		if o.res != nil {
			t.Error("cancelled sweep returned a result")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled sweep did not return: pipeline deadlock")
	}
	if sink.emitted == 0 {
		t.Error("sink never ran; cancellation path not exercised")
	}

	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, err := az.Sweep(pre, pkgs, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled sweep: err = %v, want context.Canceled", err)
	}
}

// failingSink returns an error on the first emission; the sweep must
// abort and surface that error.
type failingSink struct{ err error }

func (s failingSink) Emit(FileResult) error { return s.err }
func (failingSink) Close() error            { return nil }

func TestSweepSinkErrorAborts(t *testing.T) {
	pkgs := publicPackages(sweepArchive())
	az := New(WithWorkers(2))
	boom := errors.New("sink exploded")
	_, err := az.Sweep(context.Background(), pkgs, failingSink{boom})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sink's error", err)
	}
}
