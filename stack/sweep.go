package stack

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
)

// Package is one archive package for Sweep: a name and its C source
// files.
type Package struct {
	Name  string
	Files []string
}

// SweepResult summarizes a whole-archive run: the quantities of the
// paper's Figures 16–18 evaluation. Everything except the timing
// fields is deterministic — byte-identical for any worker count and
// between streaming and buffered modes.
type SweepResult struct {
	Packages            int   `json:"packages"`
	PackagesWithReports int   `json:"packagesWithReports"`
	Files               int   `json:"files"`
	Functions           int   `json:"functions"`
	Reports             int   `json:"reports"`
	Queries             int64 `json:"queries"`
	Timeouts            int64 `json:"timeouts"`
	// CacheResultHits / CacheResultMisses count files answered whole
	// from the WithCache result cache versus analyzed for real; both
	// are zero without a cache. They are operational counters, not
	// analysis results, so Format() omits them and the text block stays
	// byte-identical between cold and warm runs.
	CacheResultHits   int64 `json:"cacheResultHits,omitempty"`
	CacheResultMisses int64 `json:"cacheResultMisses,omitempty"`
	// BuildTime and AnalysisTime are wall-clock sums over workers.
	BuildTime    time.Duration `json:"buildTimeNs"`
	AnalysisTime time.Duration `json:"analysisTimeNs"`

	inner *corpus.SweepResult
}

// Format renders the sweep in the style of the paper's §6.5 figures —
// the classic summary block the sweep CLI prints.
func (r *SweepResult) Format() string { return r.inner.Format() }

// Sweep runs the checker over every package through the parallel
// build→check pipeline. If sink is non-nil, each file's result is
// delivered to it in archive order as soon as the file and every
// earlier one have finished (the streaming emitter; O(Workers) results
// buffered), and the sink is Closed before Sweep returns. A sink error
// aborts the sweep and is returned.
//
// Cancelling ctx shuts the pipeline down without deadlock — in-flight
// solver queries return within one check interval — and Sweep returns
// ctx's error.
func (a *Analyzer) Sweep(ctx context.Context, pkgs []Package, sink Sink) (*SweepResult, error) {
	cps := make([]corpus.Package, len(pkgs))
	for i, p := range pkgs {
		cps[i] = corpus.Package{Name: p.Name, Files: p.Files}
	}
	sw := &corpus.Sweeper{Options: a.opts, Workers: a.workers, Buffered: a.buffered}
	if a.cache != nil {
		// Assigned only when non-nil: a typed-nil *resultCache in the
		// interface field would make the sweeper consult a dead cache.
		sw.Cache = a.cache
	}

	var res *corpus.SweepResult
	var err error
	if sink == nil {
		res, err = sw.Run(ctx, cps)
	} else {
		// A failing sink cancels the derived context to stop the
		// pipeline; the sink's own error wins over the resulting
		// context error. sinkErr is only written by the emitter
		// goroutine and only read after RunStream returns.
		sctx, cancel := context.WithCancel(orBackground(ctx))
		defer cancel()
		var sinkErr error
		emit := func(fr corpus.FileResult) {
			if sinkErr != nil {
				return
			}
			if e := sink.Emit(fileResultOf(fr)); e != nil {
				sinkErr = e
				cancel()
			}
		}
		res, err = sw.RunStream(sctx, cps, emit)
		// The sink is closed on every path — flushing formats that
		// buffer (SARIF) on success, releasing resources on failure —
		// with the first error winning.
		closeErr := sink.Close()
		if sinkErr != nil {
			return nil, sinkErr
		}
		if err == nil && closeErr != nil {
			return nil, closeErr
		}
	}
	if err != nil {
		return nil, err
	}
	return &SweepResult{
		Packages:            res.Packages,
		PackagesWithReports: res.PackagesWithReports,
		Files:               res.Files,
		Functions:           res.Functions,
		Reports:             res.Reports,
		Queries:             res.Queries,
		Timeouts:            res.Timeouts,
		CacheResultHits:     res.CacheResultHits,
		CacheResultMisses:   res.CacheResultMisses,
		BuildTime:           res.BuildTime,
		AnalysisTime:        res.AnalysisTime,
		inner:               res,
	}, nil
}

func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// fileResultOf converts one internal per-file result, including its
// reports, into the public form.
func fileResultOf(fr corpus.FileResult) FileResult {
	return FileResult{
		Index:        fr.Index,
		Package:      fr.Package,
		File:         fr.File,
		Functions:    fr.Functions,
		Diagnostics:  diagnosticsOf(fr.Reports),
		BuildTime:    fr.BuildTime,
		AnalysisTime: fr.AnalysisTime,
	}
}

// coreOptions exposes the analyzer's checker options to tests that
// drive the internal sweeper directly for byte-identity comparisons.
func (a *Analyzer) coreOptions() core.Options { return a.opts }
